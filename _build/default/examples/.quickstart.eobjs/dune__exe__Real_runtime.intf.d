examples/real_runtime.mli:
