examples/applications.ml: Fj_program Format List Prog_tree Spr_core Spr_hybrid Spr_prog Spr_race Spr_sched Spr_workloads
