examples/hybrid_sim.ml: Fj_program Format List Printf Sim Spr_hybrid Spr_prog Spr_sched Spr_util Spr_workloads
