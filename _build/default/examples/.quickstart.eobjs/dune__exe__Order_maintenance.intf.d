examples/order_maintenance.mli:
