examples/order_maintenance.ml: Array Atomic Domain Format List Spr_om Spr_util
