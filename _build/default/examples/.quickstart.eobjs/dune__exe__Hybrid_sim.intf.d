examples/hybrid_sim.mli:
