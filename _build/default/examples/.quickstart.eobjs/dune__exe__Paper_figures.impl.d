examples/paper_figures.ml: Array Format List Paper_example Printf Sp_dag Sp_reference Sp_tree Spr_core Spr_hybrid Spr_sptree Spr_util
