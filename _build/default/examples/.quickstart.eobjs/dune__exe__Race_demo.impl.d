examples/race_demo.ml: Format List Printf Prog_tree Spr_core Spr_hybrid Spr_prog Spr_race Spr_sched Spr_workloads String
