(* SP-hybrid under the work-stealing scheduler simulator.

   Runs the canonical fib workload across worker counts and prints, per
   run: virtual makespan, speedup, steals s, traces (= 4s + 1), and the
   accounting buckets of Theorem 10.

   Run with:  dune exec examples/hybrid_sim.exe *)

open Spr_prog
open Spr_sched
module H = Spr_hybrid.Sp_hybrid
module T = Spr_util.Table

let () =
  let p = Spr_workloads.Progs.fib ~n:15 ~cost:6 () in
  Format.printf "Workload: fib(15) — %a@.@." Fj_program.pp_stats p;
  let t1 = ref 0 in
  let tbl =
    T.create
      ~title:"SP-hybrid on the work-stealing simulator (seed 42)"
      [
        ("P", T.Right);
        ("T_P (virt)", T.Right);
        ("speedup", T.Right);
        ("steals s", T.Right);
        ("traces 4s+1", T.Right);
        ("B2 ins", T.Right);
        ("B3 local", T.Right);
        ("B4 wait", T.Right);
        ("B6+B7 steal", T.Right);
      ]
  in
  List.iter
    (fun procs ->
      let h = H.create p in
      let res = Sim.run ~hooks:(H.hooks h) ~seed:42 ~procs p in
      let st = H.stats h in
      assert (st.H.traces = (4 * st.H.splits) + 1);
      if procs = 1 then t1 := res.Sim.time;
      T.add_row tbl
        [
          string_of_int procs;
          T.fmt_int res.Sim.time;
          Printf.sprintf "%.2fx" (float_of_int !t1 /. float_of_int res.Sim.time);
          T.fmt_int res.Sim.steals;
          T.fmt_int st.H.traces;
          T.fmt_int st.H.global_insert_ticks;
          T.fmt_int st.H.local_ops;
          T.fmt_int st.H.lock_wait_ticks;
          T.fmt_int res.Sim.steal_ticks;
        ])
    [ 1; 2; 4; 8; 16; 32 ];
  T.print tbl;
  Format.printf
    "@.Every trace count equals 4s+1, and queries against the currently@.%s@."
    "executing thread stay O(1): see `dune runtest` (test_hybrid) for the full audit."
