(* Application-scale demo: the textbook Cilk bug.

   Blocked divide-and-conquer matrix multiplication computes
   C += A·B with eight recursive sub-products; four of them may run in
   parallel safely (they touch distinct C quadrants), but the other
   four *add into the same quadrants* and must wait — the sync between
   the two waves is exactly what makes the program deterministic.
   Dropping it is the classic missing-sync race.

   Parallel mergesort gets the same treatment: the correct version
   merges through private scratch; the buggy one reuses a shared
   scratch window across logically parallel merges.

   Run with:  dune exec examples/applications.exe *)

open Spr_prog
module W = Spr_workloads.Progs

let banner fmt = Format.printf ("@.== " ^^ fmt ^^ " ==@.")

let detect name p =
  let pt = Prog_tree.of_program p in
  let r = Spr_race.Drivers.detect_serial pt Spr_core.Algorithms.sp_order in
  (match r.Spr_race.Drivers.racy_locs with
  | [] -> Format.printf "  %-28s race-free@." name
  | locs ->
      Format.printf "  %-28s RACES on %d location(s)@." name (List.length locs);
      List.iteri
        (fun i (race : Spr_race.Detector.race) ->
          if i < 3 then
            Format.printf "      e.g. loc %d: thread %d vs thread %d@." race.Spr_race.Detector.loc
              race.Spr_race.Detector.earlier race.Spr_race.Detector.later)
        r.Spr_race.Drivers.races);
  r.Spr_race.Drivers.racy_locs

let () =
  banner "Blocked matmul (C += A*B, 8x8, two spawn waves)";
  let clean = W.matmul ~n:8 () in
  Format.printf "  program: %a@." Fj_program.pp_stats clean;
  let l1 = detect "with the wave sync" clean in
  assert (l1 = []);
  let l2 = detect "missing sync (buggy)" (W.matmul ~buggy:true ~n:8 ()) in
  assert (l2 <> []);
  (* The racing locations are exactly C cells: base offset 2*n^2. *)
  assert (List.for_all (fun l -> l >= 2 * 8 * 8) l2);
  Format.printf "  (all racing locations are C cells, as the missing sync predicts)@.";

  banner "Parallel mergesort (n = 64, scratch-buffered merges)";
  let l3 = detect "private scratch" (W.mergesort ~n:64 ()) in
  assert (l3 = []);
  let l4 = detect "shared scratch (buggy)" (W.mergesort ~buggy:true ~n:64 ()) in
  assert (l4 <> []);
  (* Racing cells live in the scratch region [n, 2n). *)
  assert (List.for_all (fun l -> l >= 64 && l < 128) l4);
  Format.printf "  (all racing locations are scratch cells, as the shared buffer predicts)@.";

  banner "Same bug caught on the fly under the parallel scheduler";
  List.iter
    (fun procs ->
      let r = Spr_race.Drivers.detect_hybrid ~seed:7 ~procs (W.matmul ~buggy:true ~n:8 ()) in
      Format.printf "  P=%d: %d race report(s), %d steals, %d traces@." procs
        (List.length r.Spr_race.Drivers.races)
        r.Spr_race.Drivers.sim.Spr_sched.Sim.steals
        r.Spr_race.Drivers.hybrid_stats.Spr_hybrid.Sp_hybrid.traces;
      assert (r.Spr_race.Drivers.racy_locs <> []))
    [ 2; 8 ];
  Format.printf "@.All application-demo assertions hold.@."
