(* Reconstructs the paper's worked figures and verifies every fact the
   text quotes about them:

     Figure 1 — the computation dag (threads u0..u8, forks, joins);
     Figure 2 — its SP parse tree;
     Figure 4 — the English/Hebrew orderings (E[u], H[u]) per thread;
     Figure 12 — the trace ordering produced by a split.

   Run with:  dune exec examples/paper_figures.exe *)

open Spr_sptree

let check name cond =
  if not cond then failwith ("paper fact failed: " ^ name);
  Format.printf "  [ok] %s@." name

let () =
  let t = Paper_example.tree () in
  Format.printf "Figure 2 — SP parse tree:@.  %a@.@." Sp_tree.pp t;

  Format.printf "Figure 1 — computation dag (threads are edges):@.";
  Format.printf "%a@." Sp_dag.pp (Sp_dag.of_tree t);

  (* Figure 4: (E[u], H[u]) under every thread. *)
  let eng = Sp_tree.english_order t in
  let heb = Sp_tree.hebrew_order t in
  let tbl =
    Spr_util.Table.create ~title:"Figure 4 — English/Hebrew orderings"
      [ ("thread", Spr_util.Table.Left); ("E[u]", Spr_util.Table.Right); ("H[u]", Spr_util.Table.Right) ]
  in
  for i = 0 to 8 do
    let u = Paper_example.thread t i in
    Spr_util.Table.add_row tbl
      [ Printf.sprintf "u%d" i; string_of_int eng.(u.Sp_tree.id); string_of_int heb.(u.Sp_tree.id) ]
  done;
  Spr_util.Table.print tbl;
  Format.printf "@.Checking the facts quoted in the paper:@.";
  let u i = Paper_example.thread t i in
  let e i = eng.((u i).Sp_tree.id) and h i = heb.((u i).Sp_tree.id) in
  check "E[u1] = 1, E[u4] = 4, E[u6] = 6" (e 1 = 1 && e 4 = 4 && e 6 = 6);
  check "H[u1] = 5, H[u4] = 8, H[u6] = 3" (h 1 = 5 && h 4 = 8 && h 6 = 3);
  check "u1 < u4 (E and H agree)" (e 1 < e 4 && h 1 < h 4);
  check "u1 || u6 (E and H disagree)" (e 1 < e 6 && h 1 > h 6);
  check "lca(u1,u4) = S1, an S-node"
    (Sp_reference.lca (u 1) (u 4) == Paper_example.s1 t
    && Sp_tree.kind (Paper_example.s1 t) = Sp_tree.Series);
  check "lca(u1,u6) = P1, a P-node"
    (Sp_reference.lca (u 1) (u 6) == Paper_example.p1 t
    && Sp_tree.kind (Paper_example.p1 t) = Sp_tree.Parallel);

  (* The same facts through the on-the-fly SP-order algorithm. *)
  let inst = Spr_core.Algorithms.sp_order t in
  Spr_core.Driver.run t inst;
  check "SP-order: SP-PRECEDES(u1, u4)" (Spr_core.Sp_maintainer.precedes inst (u 1) (u 4));
  check "SP-order: u1 || u6" (Spr_core.Sp_maintainer.parallel inst (u 1) (u 6));

  (* Figure 12: the global tier's trace ordering after one split.
     English <U1,U2,U3,U4,U5>, Hebrew <U1,U4,U3,U2,U5>: U1 precedes
     everything, U5 follows everything, and U2, U3, U4 are mutually
     parallel. *)
  Format.printf "@.Figure 12 — subtrace ordering after a split:@.";
  let g = Spr_hybrid.Global_tier.create () in
  let u3 = Spr_hybrid.Global_tier.initial g in
  let { Spr_hybrid.Global_tier.u1; u2; u4; u5 } = Spr_hybrid.Global_tier.split g u3 in
  let traces = [ ("U1", u1); ("U2", u2); ("U3", u3); ("U4", u4); ("U5", u5) ] in
  List.iter
    (fun (na, a) ->
      Format.printf "  %s:" na;
      List.iter
        (fun (nb, b) ->
          if a != b then begin
            let rel =
              if Spr_hybrid.Global_tier.precedes g a b then " < " ^ nb
              else if Spr_hybrid.Global_tier.parallel g a b then " ||" ^ nb
              else " > " ^ nb
            in
            Format.printf "%s" rel
          end)
        traces;
      Format.printf "@.")
    traces;
  check "U1 precedes U2..U5"
    (List.for_all (fun (_, x) -> x == u1 || Spr_hybrid.Global_tier.precedes g u1 x) traces);
  check "U5 follows U1..U4"
    (List.for_all (fun (_, x) -> x == u5 || Spr_hybrid.Global_tier.precedes g x u5) traces);
  check "U2 || U3 || U4"
    (Spr_hybrid.Global_tier.parallel g u2 u3
    && Spr_hybrid.Global_tier.parallel g u3 u4
    && Spr_hybrid.Global_tier.parallel g u2 u4);
  Format.printf "@.All figure reconstructions verified.@."
