(* Quickstart: build a small fork-join computation, maintain its
   series-parallel relationships on the fly with SP-order, and query
   them.

   Run with:  dune exec examples/quickstart.exe *)

open Spr_sptree

let () =
  (* A little computation:

       do A; then in parallel { do B ; do (C then D) }; then do E

     As an SP parse tree: S(A, S(P(B, S(C, D)), E)). *)
  let b = Sp_tree.Builder.create () in
  let leaf = Sp_tree.Builder.leaf in
  let a = leaf b and b_ = leaf b and c = leaf b and d = leaf b and e = leaf b in
  let tree =
    Sp_tree.Builder.(
      finish b (series b a (series b (parallel b b_ (series b c d)) e)))
  in
  Format.printf "Parse tree:@.  %a@.@." Sp_tree.pp tree;

  (* Maintain SP relationships *on the fly*: drive SP-order with the
     left-to-right unfolding and query as threads "execute". *)
  let inst = Spr_core.Algorithms.sp_order tree in
  let seen = ref [] in
  Spr_core.Driver.run_with_queries tree inst ~on_thread:(fun inst ~current ->
      List.iter
        (fun prev ->
          let rel =
            if Spr_core.Sp_maintainer.precedes inst prev current then "precedes"
            else if Spr_core.Sp_maintainer.parallel inst prev current then "is parallel to"
            else "follows"
          in
          Format.printf "  thread %d %s thread %d@." prev.Sp_tree.id rel current.Sp_tree.id)
        (List.rev !seen);
      seen := current :: !seen;
      Format.printf "  -- executed thread %d@." current.Sp_tree.id);

  (* After the run, any pair can still be queried in O(1). *)
  Format.printf "@.Final queries:@.";
  let name n =
    List.assq n [ (a, "A"); (b_, "B"); (c, "C"); (d, "D"); (e, "E") ]
  in
  List.iter
    (fun (x, y) ->
      let rel =
        if Spr_core.Sp_maintainer.precedes inst x y then "<"
        else if Spr_core.Sp_maintainer.parallel inst x y then "||"
        else ">"
      in
      Format.printf "  %s %s %s@." (name x) rel (name y))
    [ (a, b_); (b_, c); (c, d); (b_, d); (a, e); (d, e) ];

  (* B || C and B || D (they sit under the P-node); everything else is
     ordered.  Cross-check against the a-posteriori LCA relation: *)
  assert (Sp_reference.parallel b_ c);
  assert (Sp_reference.parallel b_ d);
  assert (Sp_reference.precedes a e);
  Format.printf "@.All quickstart assertions hold.@."
